// Concurrency-safe memoization: a shared_mutex-guarded map whose values
// are produced by a per-key once-latch, so each value is generated exactly
// once even when many jobs request the same key simultaneously (the other
// requesters block on the latch, not on the map lock, so unrelated keys
// generate in parallel).
//
// experiments::TraceCache instantiates this for (kernel, codegen) -> Trace;
// the template itself is simulator-agnostic so the ThreadSanitizer test
// target can exercise it without linking the simulation libraries.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <utility>

namespace sttsim::exec {

template <typename Key, typename Value, typename Compare = std::less<>>
class ConcurrentMemoCache {
 public:
  /// Returns the value for `lookup`, generating it with `gen()` on first
  /// use. `lookup` may be a cheap view type (heterogeneous comparison via
  /// a transparent `Compare`); `make_key()` materializes the owning Key
  /// only on the insertion path, so cache hits allocate nothing. If `gen`
  /// throws, the entry stays ungenerated and the next requester retries.
  template <typename LookupKey, typename MakeKey, typename Generator>
  const Value& get_or_generate(const LookupKey& lookup, MakeKey&& make_key,
                               Generator&& gen) {
    Entry* entry = nullptr;
    {
      std::shared_lock<std::shared_mutex> read(mu_);
      const auto it = map_.find(lookup);
      if (it != map_.end()) entry = &it->second;
    }
    if (entry == nullptr) {
      std::unique_lock<std::shared_mutex> write(mu_);
      entry = &map_[std::forward<MakeKey>(make_key)()];
    }
    // Per-key latch (explicit mutex/condvar rather than std::call_once,
    // whose exceptional path is not ThreadSanitizer-clean in libstdc++).
    std::unique_lock<std::mutex> lock(entry->mu);
    while (true) {
      if (entry->value.has_value()) return *entry->value;
      if (!entry->generating) break;
      entry->done.wait(lock);
    }
    entry->generating = true;
    lock.unlock();
    try {
      Value v = gen();
      lock.lock();
      entry->value.emplace(std::move(v));
    } catch (...) {
      lock.lock();
      entry->generating = false;  // let the next requester retry
      entry->done.notify_all();
      lock.unlock();
      throw;
    }
    entry->generating = false;
    generated_.fetch_add(1, std::memory_order_relaxed);
    entry->done.notify_all();
    // The value is immutable from here on; readers only need the entry.
    return *entry->value;
  }

  /// Number of generated entries.
  std::size_t entries() const {
    return generated_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::mutex mu;
    std::condition_variable done;
    bool generating = false;
    std::optional<Value> value;
  };

  mutable std::shared_mutex mu_;
  std::map<Key, Entry, Compare> map_;  // node stability keeps Entry* valid
  std::atomic<std::size_t> generated_{0};
};

}  // namespace sttsim::exec
