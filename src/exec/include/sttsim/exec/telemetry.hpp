// Process-wide throughput counters for the experiment engine: how many
// simulations ran, how many trace operations they replayed, how many traces
// were generated (vs served from the trace store), and how long each cold
// phase — generate / decode / replay — took. The perf_smoke bench snapshots
// these around each figure to derive simulations/sec, trace-ops/sec and the
// per-phase timing breakdown for BENCH_perf.json.
#pragma once

#include <atomic>
#include <cstdint>

namespace sttsim::exec {

struct TelemetrySnapshot {
  std::uint64_t simulations = 0;      ///< completed System::run calls
  std::uint64_t trace_ops = 0;        ///< trace operations replayed
  std::uint64_t traces_generated = 0; ///< kernel traces generated (not hits)
  std::uint64_t memo_hits = 0;        ///< grid points served from the
                                      ///< persistent result store
  std::uint64_t memo_misses = 0;      ///< grid points simulated because the
                                      ///< store had no (valid) record
  std::uint64_t tasks_retried = 0;    ///< transient-failure retry attempts
  std::uint64_t tasks_timed_out = 0;  ///< tasks past their request deadline
  std::uint64_t tasks_cancelled = 0;  ///< tasks skipped/drained on cancel
  std::uint64_t trace_store_hits = 0;   ///< traces decoded from the store
  std::uint64_t trace_store_misses = 0; ///< store probes that regenerated
  std::uint64_t generate_ns = 0;      ///< wall ns synthesizing traces
  std::uint64_t decode_ns = 0;        ///< wall ns deserializing/decompressing
                                      ///< stored traces (warm path)
  std::uint64_t replay_ns = 0;        ///< wall ns inside System::run /
                                      ///< run_batch replay

  TelemetrySnapshot operator-(const TelemetrySnapshot& rhs) const {
    return {simulations - rhs.simulations, trace_ops - rhs.trace_ops,
            traces_generated - rhs.traces_generated,
            memo_hits - rhs.memo_hits, memo_misses - rhs.memo_misses,
            tasks_retried - rhs.tasks_retried,
            tasks_timed_out - rhs.tasks_timed_out,
            tasks_cancelled - rhs.tasks_cancelled,
            trace_store_hits - rhs.trace_store_hits,
            trace_store_misses - rhs.trace_store_misses,
            generate_ns - rhs.generate_ns, decode_ns - rhs.decode_ns,
            replay_ns - rhs.replay_ns};
  }
};

/// Thread-safe global counters (atomics; cheap enough for per-run bumps).
class Telemetry {
 public:
  static Telemetry& instance();

  void count_simulation(std::uint64_t ops_replayed) {
    simulations_.fetch_add(1, std::memory_order_relaxed);
    trace_ops_.fetch_add(ops_replayed, std::memory_order_relaxed);
  }
  void count_trace_generated() {
    traces_generated_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_memo_hit() { memo_hits_.fetch_add(1, std::memory_order_relaxed); }
  void count_memo_miss() {
    memo_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_task_retried() {
    tasks_retried_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_task_timed_out() {
    tasks_timed_out_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_task_cancelled() {
    tasks_cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_trace_store_hit() {
    trace_store_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_trace_store_miss() {
    trace_store_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_generate_ns(std::uint64_t ns) {
    generate_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void count_decode_ns(std::uint64_t ns) {
    decode_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void count_replay_ns(std::uint64_t ns) {
    replay_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  TelemetrySnapshot snapshot() const {
    return {simulations_.load(std::memory_order_relaxed),
            trace_ops_.load(std::memory_order_relaxed),
            traces_generated_.load(std::memory_order_relaxed),
            memo_hits_.load(std::memory_order_relaxed),
            memo_misses_.load(std::memory_order_relaxed),
            tasks_retried_.load(std::memory_order_relaxed),
            tasks_timed_out_.load(std::memory_order_relaxed),
            tasks_cancelled_.load(std::memory_order_relaxed),
            trace_store_hits_.load(std::memory_order_relaxed),
            trace_store_misses_.load(std::memory_order_relaxed),
            generate_ns_.load(std::memory_order_relaxed),
            decode_ns_.load(std::memory_order_relaxed),
            replay_ns_.load(std::memory_order_relaxed)};
  }

  void reset() {
    simulations_.store(0, std::memory_order_relaxed);
    trace_ops_.store(0, std::memory_order_relaxed);
    traces_generated_.store(0, std::memory_order_relaxed);
    memo_hits_.store(0, std::memory_order_relaxed);
    memo_misses_.store(0, std::memory_order_relaxed);
    tasks_retried_.store(0, std::memory_order_relaxed);
    tasks_timed_out_.store(0, std::memory_order_relaxed);
    tasks_cancelled_.store(0, std::memory_order_relaxed);
    trace_store_hits_.store(0, std::memory_order_relaxed);
    trace_store_misses_.store(0, std::memory_order_relaxed);
    generate_ns_.store(0, std::memory_order_relaxed);
    decode_ns_.store(0, std::memory_order_relaxed);
    replay_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> simulations_{0};
  std::atomic<std::uint64_t> trace_ops_{0};
  std::atomic<std::uint64_t> traces_generated_{0};
  std::atomic<std::uint64_t> memo_hits_{0};
  std::atomic<std::uint64_t> memo_misses_{0};
  std::atomic<std::uint64_t> tasks_retried_{0};
  std::atomic<std::uint64_t> tasks_timed_out_{0};
  std::atomic<std::uint64_t> tasks_cancelled_{0};
  std::atomic<std::uint64_t> trace_store_hits_{0};
  std::atomic<std::uint64_t> trace_store_misses_{0};
  std::atomic<std::uint64_t> generate_ns_{0};
  std::atomic<std::uint64_t> decode_ns_{0};
  std::atomic<std::uint64_t> replay_ns_{0};
};

}  // namespace sttsim::exec
