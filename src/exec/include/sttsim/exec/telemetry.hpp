// Process-wide throughput counters for the experiment engine: how many
// simulations ran, how many trace operations they replayed, and how many
// traces were generated. The perf_smoke bench snapshots these around each
// figure to derive simulations/sec and trace-ops/sec for BENCH_perf.json.
#pragma once

#include <atomic>
#include <cstdint>

namespace sttsim::exec {

struct TelemetrySnapshot {
  std::uint64_t simulations = 0;      ///< completed System::run calls
  std::uint64_t trace_ops = 0;        ///< trace operations replayed
  std::uint64_t traces_generated = 0; ///< kernel traces generated (not hits)
  std::uint64_t memo_hits = 0;        ///< grid points served from the
                                      ///< persistent result store
  std::uint64_t memo_misses = 0;      ///< grid points simulated because the
                                      ///< store had no (valid) record
  std::uint64_t tasks_retried = 0;    ///< transient-failure retry attempts
  std::uint64_t tasks_timed_out = 0;  ///< tasks past their request deadline
  std::uint64_t tasks_cancelled = 0;  ///< tasks skipped/drained on cancel

  TelemetrySnapshot operator-(const TelemetrySnapshot& rhs) const {
    return {simulations - rhs.simulations, trace_ops - rhs.trace_ops,
            traces_generated - rhs.traces_generated,
            memo_hits - rhs.memo_hits, memo_misses - rhs.memo_misses,
            tasks_retried - rhs.tasks_retried,
            tasks_timed_out - rhs.tasks_timed_out,
            tasks_cancelled - rhs.tasks_cancelled};
  }
};

/// Thread-safe global counters (atomics; cheap enough for per-run bumps).
class Telemetry {
 public:
  static Telemetry& instance();

  void count_simulation(std::uint64_t ops_replayed) {
    simulations_.fetch_add(1, std::memory_order_relaxed);
    trace_ops_.fetch_add(ops_replayed, std::memory_order_relaxed);
  }
  void count_trace_generated() {
    traces_generated_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_memo_hit() { memo_hits_.fetch_add(1, std::memory_order_relaxed); }
  void count_memo_miss() {
    memo_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_task_retried() {
    tasks_retried_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_task_timed_out() {
    tasks_timed_out_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_task_cancelled() {
    tasks_cancelled_.fetch_add(1, std::memory_order_relaxed);
  }

  TelemetrySnapshot snapshot() const {
    return {simulations_.load(std::memory_order_relaxed),
            trace_ops_.load(std::memory_order_relaxed),
            traces_generated_.load(std::memory_order_relaxed),
            memo_hits_.load(std::memory_order_relaxed),
            memo_misses_.load(std::memory_order_relaxed),
            tasks_retried_.load(std::memory_order_relaxed),
            tasks_timed_out_.load(std::memory_order_relaxed),
            tasks_cancelled_.load(std::memory_order_relaxed)};
  }

  void reset() {
    simulations_.store(0, std::memory_order_relaxed);
    trace_ops_.store(0, std::memory_order_relaxed);
    traces_generated_.store(0, std::memory_order_relaxed);
    memo_hits_.store(0, std::memory_order_relaxed);
    memo_misses_.store(0, std::memory_order_relaxed);
    tasks_retried_.store(0, std::memory_order_relaxed);
    tasks_timed_out_.store(0, std::memory_order_relaxed);
    tasks_cancelled_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> simulations_{0};
  std::atomic<std::uint64_t> trace_ops_{0};
  std::atomic<std::uint64_t> traces_generated_{0};
  std::atomic<std::uint64_t> memo_hits_{0};
  std::atomic<std::uint64_t> memo_misses_{0};
  std::atomic<std::uint64_t> tasks_retried_{0};
  std::atomic<std::uint64_t> tasks_timed_out_{0};
  std::atomic<std::uint64_t> tasks_cancelled_{0};
};

}  // namespace sttsim::exec
