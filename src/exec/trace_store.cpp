#include "sttsim/exec/trace_store.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "sttsim/util/hash.hpp"

namespace sttsim::exec {
namespace {

// "STTTRCS1" — trace-store log, format generation 1.
constexpr std::uint64_t kMagic = 0x3153435254545453ULL;

constexpr std::size_t kHeaderBytes = AppendLog::kHeaderBytes;

// digest u64 + len u32 precede the payload; checksum u64 follows it.
constexpr std::size_t kRecordHeadBytes = 8 + 4;
constexpr std::size_t kRecordTailBytes = 8;

std::atomic<TraceStore*> g_trace_store{nullptr};

}  // namespace

void set_trace_store(TraceStore* store) {
  g_trace_store.store(store, std::memory_order_release);
}

TraceStore* trace_store() {
  return g_trace_store.load(std::memory_order_acquire);
}

TraceStore::TraceStore(std::string path, std::uint32_t content_version)
    : log_(std::move(path), "trace store", kMagic, kSchemaVersion,
           content_version) {
  std::lock_guard<std::mutex> lock(mu_);
  FileLock file_lock(log_.file());
  load_or_init_locked();
}

TraceStore::~TraceStore() = default;

std::size_t TraceStore::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

void TraceStore::init_header_locked() {
  log_.init_header();
  index_.clear();
  arena_.clear();
  scan_end_ = kHeaderBytes;
}

void TraceStore::load_or_init_locked() {
  const std::size_t size = log_.size();
  if (size == 0) {
    // Fresh file (we created it, or we won the creation race).
    init_header_locked();
    return;
  }
  // Wrong magic / schema / content version / checksum invalidates the whole
  // file — regenerate every trace rather than misread old blobs.
  if (!log_.check_header()) {
    std::fprintf(stderr,
                 "[sttsim] trace store %s: header/schema mismatch, "
                 "re-initializing empty (old traces invalidated)\n",
                 log_.path().c_str());
    init_header_locked();
    return;
  }
  scan_end_ = kHeaderBytes;
  scan_new_locked();
}

std::size_t TraceStore::scan_new_locked() {
  const std::size_t size = log_.size();
  if (size < scan_end_) {
    // The file shrank below our high-water mark: a foreign process
    // re-initialized it. Reload from scratch rather than serving an index
    // the bytes no longer back.
    index_.clear();
    arena_.clear();
    scan_end_ = 0;
    load_or_init_locked();
    return index_.size();
  }

  // Index every complete record whose checksum matches; skip complete
  // corrupt ones in place; truncate a torn tail. Unlike the fixed-record
  // result store, a corrupted *length* here would desync the framing of
  // everything after it — a record whose stated extent does not fit in the
  // file (or exceeds the blob cap) therefore truncates the rest of the
  // file, not just itself.
  std::FILE* file = log_.file();
  std::size_t added = 0;
  std::uint8_t head[kRecordHeadBytes];
  std::vector<std::uint8_t> rec;
  std::fseek(file, static_cast<long>(scan_end_), SEEK_SET);
  bool tail_torn = false;
  while (true) {
    const std::size_t got = std::fread(head, 1, sizeof head, file);
    if (got < sizeof head) {
      tail_torn = got != 0;
      break;
    }
    const std::uint32_t len = get_u32(head + 8);
    const std::size_t body = static_cast<std::size_t>(len) + kRecordTailBytes;
    if (len > kMaxBlobBytes || scan_end_ + sizeof head + body > size) {
      tail_torn = true;
      break;
    }
    rec.resize(sizeof head + body);
    std::memcpy(rec.data(), head, sizeof head);
    if (std::fread(rec.data() + sizeof head, 1, body, file) < body) {
      tail_torn = true;
      break;
    }
    scan_end_ += rec.size();
    const std::uint64_t check = get_u64(rec.data() + kRecordHeadBytes + len);
    if (check != util::hash_bytes(rec.data(), kRecordHeadBytes + len)) {
      dropped_ += 1;
      continue;
    }
    const std::uint64_t digest = get_u64(rec.data());
    if (index_.count(digest) != 0) continue;  // first write wins
    index_.emplace(digest, Entry{arena_.size(), len});
    arena_.insert(arena_.end(), rec.begin() + kRecordHeadBytes,
                  rec.begin() + kRecordHeadBytes +
                      static_cast<std::ptrdiff_t>(len));
    ++added;
  }
  if (tail_torn) {
    truncated_ += size - scan_end_;
    if (!log_.truncate_to(scan_end_)) {
      // Cannot truncate (exotic filesystem): rewrite the log from the
      // indexed records — still never abort.
      log_.rewrite_begin();
      file = log_.file();
      std::size_t end = kHeaderBytes;
      std::vector<std::uint8_t> out;
      for (const auto& [digest, entry] : index_) {
        out.resize(kRecordHeadBytes + entry.len + kRecordTailBytes);
        put_u64(out.data(), digest);
        put_u32(out.data() + 8, entry.len);
        std::memcpy(out.data() + kRecordHeadBytes,
                    arena_.data() + entry.offset, entry.len);
        put_u64(out.data() + kRecordHeadBytes + entry.len,
                util::hash_bytes(out.data(), kRecordHeadBytes + entry.len));
        std::fwrite(out.data(), 1, out.size(), file);
        end += out.size();
      }
      std::fflush(file);
      scan_end_ = end;
    }
  }
  return added;
}

bool TraceStore::lookup(std::uint64_t digest,
                        std::vector<std::uint8_t>& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(digest);
  if (it == index_.end()) return false;
  const Entry& e = it->second;
  out.assign(arena_.begin() + static_cast<std::ptrdiff_t>(e.offset),
             arena_.begin() + static_cast<std::ptrdiff_t>(e.offset + e.len));
  return true;
}

bool TraceStore::contains(std::uint64_t digest) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.find(digest) != index_.end();
}

void TraceStore::append(std::uint64_t digest, const void* payload,
                        std::size_t len) {
  if (len > kMaxBlobBytes) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (index_.count(digest) != 0) return;  // first write wins (this process)
  FileLock file_lock(log_.file());
  // Pick up records concurrent campaigns appended since our last scan:
  // first-write-wins must hold across processes too.
  scan_new_locked();
  if (index_.count(digest) != 0) return;  // first write wins (cross-process)
  std::FILE* file = log_.file();
  std::vector<std::uint8_t> rec(kRecordHeadBytes + len + kRecordTailBytes);
  put_u64(rec.data(), digest);
  put_u32(rec.data() + 8, static_cast<std::uint32_t>(len));
  std::memcpy(rec.data() + kRecordHeadBytes, payload, len);
  put_u64(rec.data() + kRecordHeadBytes + len,
          util::hash_bytes(rec.data(), kRecordHeadBytes + len));
  std::fseek(file, static_cast<long>(scan_end_), SEEK_SET);
  std::fwrite(rec.data(), 1, rec.size(), file);
  std::fflush(file);
  scan_end_ += rec.size();
  index_.emplace(digest, Entry{arena_.size(), static_cast<std::uint32_t>(len)});
  const auto* p = static_cast<const std::uint8_t*>(payload);
  arena_.insert(arena_.end(), p, p + len);
}

std::size_t TraceStore::refresh() {
  std::lock_guard<std::mutex> lock(mu_);
  FileLock file_lock(log_.file());
  return scan_new_locked();
}

}  // namespace sttsim::exec
