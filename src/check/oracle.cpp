#include "sttsim/check/oracle.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sttsim/util/check.hpp"

namespace sttsim::check {
namespace {

using sim::Cycle;
using sim::Cycles;
using Bytes = std::vector<std::uint8_t>;

/// Byte `offset` of a store payload: the 64-bit value repeats every 8 bytes
/// (wide vector stores replicate the payload; see cpu::TraceOp::value).
std::uint8_t payload_byte(std::uint64_t value, std::uint64_t offset) {
  return static_cast<std::uint8_t>(value >> (8 * (offset % 8)));
}

// ---------------------------------------------------------------------------
// Content ledger: the last bytes written at one level of the hierarchy,
// keyed by absolute byte address. Whether a line is *resident* at a level is
// tracked by the functional structures below; the ledger entry of a resident
// line is always fresh because every fill overwrites its span. Unwritten
// addresses read as zero, the architectural initial value.
class ByteMap {
 public:
  std::uint8_t read(Addr a) const {
    auto it = bytes_.find(a);
    return it == bytes_.end() ? 0 : it->second;
  }
  void write(Addr a, std::uint8_t v) { bytes_[a] = v; }

 private:
  std::unordered_map<Addr, std::uint8_t> bytes_;
};

void copy_span(ByteMap& dst, const ByteMap& src, Addr base, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    dst.write(base + i, src.read(base + i));
  }
}

// ---------------------------------------------------------------------------
// Busy-until timelines, re-derived from DESIGN.md (not sim::ResourceTimeline).
struct RefGrant {
  Cycle start = 0;
  Cycle done = 0;
};

class RefTimeline {
 public:
  RefGrant acquire(Cycle earliest, Cycles duration) {
    RefGrant g;
    g.start = std::max(earliest, busy_until_);
    g.done = g.start + duration;
    busy_until_ = g.done;
    return g;
  }
  Cycle free_at() const { return busy_until_; }

 private:
  Cycle busy_until_ = 0;
};

class RefBanks {
 public:
  RefBanks(unsigned num_banks, std::uint64_t line_bytes)
      : line_bytes_(line_bytes), banks_(num_banks) {}
  RefGrant acquire(Addr addr, Cycle earliest, Cycles duration) {
    return banks_[bank_of(addr)].acquire(earliest, duration);
  }
  Cycle free_at(Addr addr) const { return banks_[bank_of(addr)].free_at(); }

 private:
  unsigned bank_of(Addr addr) const {
    return static_cast<unsigned>((addr / line_bytes_) % banks_.size());
  }
  std::uint64_t line_bytes_;
  std::vector<RefTimeline> banks_;
};

// Bounded in-flight buffer (store buffer / writeback buffer): entries retire
// at their completion cycle; a full buffer delays acceptance until the
// earliest in-flight entry retires.
class RefFifo {
 public:
  explicit RefFifo(unsigned depth) : depth_(depth) {}
  Cycle accept(Cycle now) {
    drain(now);
    if (in_flight_.size() < depth_) return now;
    const Cycle available = *in_flight_.begin();
    drain(available);
    return available;
  }
  void commit(Cycle done) { in_flight_.insert(done); }

 private:
  void drain(Cycle now) {
    while (!in_flight_.empty() && *in_flight_.begin() <= now) {
      in_flight_.erase(in_flight_.begin());
    }
  }
  unsigned depth_;
  std::multiset<Cycle> in_flight_;
};

// Miss Status Holding Registers: lines with an outstanding fill. An entry
// expires when its fill completes; releasing an evicted line's entry keeps
// the "entry valid => line resident" invariant.
class RefMshr {
 public:
  explicit RefMshr(unsigned entries) : slots_(entries) {}
  Cycle lookup(Addr line, Cycle now) const {
    for (const Slot& s : slots_) {
      if (s.done > now && s.line == line) return s.done;
    }
    return 0;
  }
  Cycle allocate(Addr line, Cycle now, Cycle done) {
    for (Slot& s : slots_) {
      if (s.done <= now) {
        s.line = line;
        s.done = done;
        return done;
      }
    }
    // Full: the fill slips by the wait for the earliest completion.
    Slot* earliest = &slots_[0];
    for (Slot& s : slots_) {
      if (s.done < earliest->done) earliest = &s;
    }
    const Cycles extra = earliest->done - now;
    earliest->line = line;
    earliest->done = done + extra;
    return earliest->done;
  }
  void release(Addr line) {
    for (Slot& s : slots_) {
      if (s.line == line) s.done = 0;
    }
  }
  unsigned occupancy(Cycle now) const {
    unsigned n = 0;
    for (const Slot& s : slots_) n += s.done > now ? 1 : 0;
    return n;
  }
  unsigned capacity() const { return static_cast<unsigned>(slots_.size()); }

 private:
  struct Slot {
    Addr line = 0;
    Cycle done = 0;  // 0 = free
  };
  std::vector<Slot> slots_;
};

// MSHR fill registers: prefetched lines parked, with their data, until a
// demand access consumes them. True-LRU displacement when full.
class RefFillRegs {
 public:
  explicit RefFillRegs(unsigned entries) : capacity_(entries) {}

  void insert(Addr line, Cycle ready, Bytes data) {
    auto it = slots_.find(line);
    if (it == slots_.end()) {
      if (slots_.size() >= capacity_) {
        auto victim = slots_.begin();
        for (auto i = slots_.begin(); i != slots_.end(); ++i) {
          if (i->second.stamp < victim->second.stamp) victim = i;
        }
        slots_.erase(victim);
      }
      it = slots_.emplace(line, Slot{}).first;
    }
    it->second.ready = ready;
    it->second.stamp = ++clock_;
    it->second.data = std::move(data);
  }
  std::optional<Cycle> lookup(Addr line) const {
    auto it = slots_.find(line);
    if (it == slots_.end()) return std::nullopt;
    return it->second.ready;
  }
  struct Taken {
    Cycle ready = 0;
    Bytes data;
  };
  std::optional<Taken> consume(Addr line) {
    auto it = slots_.find(line);
    if (it == slots_.end()) return std::nullopt;
    Taken t{it->second.ready, std::move(it->second.data)};
    slots_.erase(it);
    return t;
  }
  void invalidate(Addr line) { slots_.erase(line); }

 private:
  struct Slot {
    Cycle ready = 0;
    std::uint64_t stamp = 0;
    Bytes data;
  };
  std::size_t capacity_;
  std::uint64_t clock_ = 0;
  std::map<Addr, Slot> slots_;
};

// Fully-associative sectored buffer (the VWB, and the narrow front with one
// sector per line): lines identified by their base address, per-sector
// valid/dirty/ready state, true-LRU line replacement.
class RefSectorBuffer {
 public:
  RefSectorBuffer(unsigned num_lines, std::uint64_t line_bytes,
                  std::uint64_t sector_bytes)
      : num_lines_(num_lines),
        line_bytes_(line_bytes),
        sector_bytes_(sector_bytes),
        sectors_per_line_(static_cast<unsigned>(line_bytes / sector_bytes)) {}

  struct Hit {
    bool hit = false;
    Cycle ready = 0;
  };

  /// Bumps LRU on a full (sector-valid) hit — a real access, not a probe.
  Hit lookup(Addr addr) {
    Line* l = find(addr);
    if (l == nullptr) return {};
    Sector& s = l->sectors[index(addr)];
    if (!s.valid) return {};
    l->stamp = ++clock_;
    return {true, s.ready};
  }
  Hit probe(Addr addr) const {
    const Line* l = find(addr);
    if (l == nullptr) return {};
    const Sector& s = l->sectors[index(addr)];
    if (!s.valid) return {};
    return {true, s.ready};
  }
  void mark_dirty(Addr addr) {
    Line* l = find(addr);
    if (l == nullptr) return;
    l->sectors[index(addr)].dirty = true;
    l->stamp = ++clock_;
  }

  /// Allocates (or reuses) the line for `addr`; returns the addresses of
  /// dirty sectors evicted to make room (the caller retires their data).
  std::vector<Addr> allocate_line(Addr addr) {
    std::vector<Addr> dirty;
    const Addr base = align_down(addr, line_bytes_);
    auto it = lines_.find(base);
    if (it == lines_.end()) {
      if (lines_.size() >= num_lines_) {
        auto victim = lines_.begin();
        for (auto i = lines_.begin(); i != lines_.end(); ++i) {
          if (i->second.stamp < victim->second.stamp) victim = i;
        }
        for (unsigned i = 0; i < sectors_per_line_; ++i) {
          const Sector& s = victim->second.sectors[i];
          if (s.valid && s.dirty) {
            dirty.push_back(victim->first + i * sector_bytes_);
          }
        }
        lines_.erase(victim);
      }
      it = lines_.emplace(base, Line{}).first;
      it->second.sectors.resize(sectors_per_line_);
    }
    it->second.stamp = ++clock_;
    return dirty;
  }

  /// Installs the sector containing `addr` (line must be allocated).
  void fill_sector(Addr addr, Cycle ready) {
    Line* l = find(addr);
    if (l == nullptr) return;
    l->sectors[index(addr)] = Sector{true, false, ready};
  }

  /// Returns true iff the sector was resident and dirty.
  bool invalidate_sector(Addr addr) {
    Line* l = find(addr);
    if (l == nullptr) return false;
    Sector& s = l->sectors[index(addr)];
    if (!s.valid) return false;
    const bool was_dirty = s.dirty;
    s = Sector{};
    return was_dirty;
  }

 private:
  struct Sector {
    bool valid = false;
    bool dirty = false;
    Cycle ready = 0;
  };
  struct Line {
    std::uint64_t stamp = 0;
    std::vector<Sector> sectors;
  };
  Line* find(Addr addr) {
    auto it = lines_.find(align_down(addr, line_bytes_));
    return it == lines_.end() ? nullptr : &it->second;
  }
  const Line* find(Addr addr) const {
    return const_cast<RefSectorBuffer*>(this)->find(addr);
  }
  unsigned index(Addr addr) const {
    return static_cast<unsigned>((addr % line_bytes_) / sector_bytes_);
  }
  std::size_t num_lines_;
  std::uint64_t line_bytes_;
  std::uint64_t sector_bytes_;
  unsigned sectors_per_line_;
  std::uint64_t clock_ = 0;
  std::map<Addr, Line> lines_;
};

// Set-associative array with true-LRU replacement (global stamp clock, as in
// the production model): a set holds at most `assoc` lines; filling a full
// set evicts the least-recently-stamped line.
class RefArray {
 public:
  RefArray(std::uint64_t num_sets, unsigned assoc, std::uint64_t line_bytes)
      : num_sets_(num_sets),
        assoc_(assoc),
        line_bytes_(line_bytes),
        sets_(num_sets) {}

  bool present(Addr addr) const {
    const Set& set = set_for(addr);
    return set.count(align_down(addr, line_bytes_)) != 0;
  }
  bool touch(Addr addr, bool is_write) {
    Set& set = set_for(addr);
    auto it = set.find(align_down(addr, line_bytes_));
    if (it == set.end()) return false;
    it->second.stamp = ++clock_;
    if (is_write) it->second.dirty = true;
    return true;
  }
  void mark_dirty(Addr addr) {
    Set& set = set_for(addr);
    auto it = set.find(align_down(addr, line_bytes_));
    if (it != set.end()) it->second.dirty = true;  // no LRU bump
  }
  struct Victim {
    bool valid = false;
    bool dirty = false;
    Addr addr = 0;
  };
  Victim fill(Addr addr, bool dirty) {
    Set& set = set_for(addr);
    const Addr line = align_down(addr, line_bytes_);
    Victim v;
    if (set.size() >= assoc_) {
      auto victim = set.begin();
      for (auto it = set.begin(); it != set.end(); ++it) {
        if (it->second.stamp < victim->second.stamp) victim = it;
      }
      v.valid = true;
      v.dirty = victim->second.dirty;
      v.addr = victim->first;
      set.erase(victim);
    }
    set[line] = Way{dirty, ++clock_};
    return v;
  }

 private:
  struct Way {
    bool dirty = false;
    std::uint64_t stamp = 0;
  };
  using Set = std::map<Addr, Way>;
  Set& set_for(Addr addr) {
    return sets_[(addr / line_bytes_) % num_sets_];
  }
  const Set& set_for(Addr addr) const {
    return sets_[(addr / line_bytes_) % num_sets_];
  }
  std::uint64_t num_sets_;
  std::size_t assoc_;
  std::uint64_t line_bytes_;
  std::vector<Set> sets_;
  std::uint64_t clock_ = 0;
};

// Unified L2 + fixed-latency main memory, with contents. Dirty L2 victims
// spill to memory in the background; L1 writebacks merge (write-allocate).
class RefL2 {
 public:
  explicit RefL2(const mem::L2Config& cfg)
      : line_bytes_(cfg.line_bytes),
        hit_latency_(cfg.hit_latency),
        port_occupancy_(cfg.port_occupancy),
        memory_latency_(cfg.memory_latency),
        array_(cfg.capacity_bytes / cfg.line_bytes / cfg.associativity,
               cfg.associativity, cfg.line_bytes) {}

  std::uint64_t line_bytes() const { return line_bytes_; }
  const ByteMap& bytes() const { return bytes_; }

  Cycle fetch_line(Addr addr, Cycle earliest, sim::MemStats& stats) {
    const Addr line = align_down(addr, line_bytes_);
    const RefGrant port = port_.acquire(earliest, port_occupancy_);
    stats.l2_array_reads += 1;
    if (array_.touch(line, /*is_write=*/false)) {
      stats.l2_hits += 1;
      return port.start + hit_latency_;
    }
    stats.l2_misses += 1;
    const RefGrant mem =
        memory_channel_.acquire(port.start + hit_latency_, memory_latency_);
    const RefArray::Victim v = array_.fill(line, /*dirty=*/false);
    if (v.valid && v.dirty) {
      copy_span(memory_, bytes_, v.addr, line_bytes_);
      memory_channel_.acquire(mem.done, memory_latency_);
    }
    copy_span(bytes_, memory_, line, line_bytes_);
    stats.l2_array_writes += 1;
    return mem.done;
  }

  /// Accepts `nbytes` starting at `addr` (an L1 line, possibly narrower than
  /// the L2 line) read out of `src`.
  Cycle accept_writeback(Addr addr, std::uint64_t nbytes, const ByteMap& src,
                         Cycle earliest, sim::MemStats& stats) {
    const Addr line = align_down(addr, line_bytes_);
    const RefGrant port = port_.acquire(earliest, port_occupancy_);
    stats.l2_array_writes += 1;
    if (array_.touch(line, /*is_write=*/true)) {
      stats.l2_hits += 1;
      copy_span(bytes_, src, addr, nbytes);
      return port.start + hit_latency_;
    }
    stats.l2_misses += 1;
    const RefGrant mem =
        memory_channel_.acquire(port.start + hit_latency_, memory_latency_);
    const RefArray::Victim v = array_.fill(line, /*dirty=*/true);
    if (v.valid && v.dirty) {
      copy_span(memory_, bytes_, v.addr, line_bytes_);
      memory_channel_.acquire(mem.done, memory_latency_);
    }
    copy_span(bytes_, memory_, line, line_bytes_);  // write-allocate pull
    copy_span(bytes_, src, addr, nbytes);           // merge the writeback
    return mem.done;
  }

 private:
  std::uint64_t line_bytes_;
  Cycles hit_latency_;
  Cycles port_occupancy_;
  Cycles memory_latency_;
  RefArray array_;
  RefTimeline port_;
  RefTimeline memory_channel_;
  ByteMap bytes_;
  ByteMap memory_;
};

constexpr std::size_t kMaxShadowViolations = 8;

// Shared plumbing: the architectural byte image (ground truth written by
// every store) and the shadow comparison against whatever level served.
class OracleBase : public ReferenceDl1 {
 protected:
  void record(Addr a, std::uint8_t expected, std::uint8_t observed,
              const char* level) {
    if (shadow_violations_.size() >= kMaxShadowViolations) return;
    shadow_violations_.push_back(ShadowViolation{a, expected, observed, level});
  }
  void check_bytes(Addr addr, unsigned size, const ByteMap& level_bytes,
                   const char* level) {
    for (unsigned i = 0; i < size; ++i) {
      const std::uint8_t expected = arch_.read(addr + i);
      const std::uint8_t observed = level_bytes.read(addr + i);
      if (expected != observed) record(addr + i, expected, observed, level);
    }
  }
  void arch_store(Addr addr, unsigned size, std::uint64_t value) {
    for (unsigned i = 0; i < size; ++i) {
      arch_.write(addr + i, payload_byte(value, i));
    }
  }
  /// Writes the overlap of the store [addr, addr+size) with the level
  /// segment [seg_lo, seg_hi) into `dst`.
  static void store_overlap(ByteMap& dst, Addr seg_lo, Addr seg_hi, Addr addr,
                            unsigned size, std::uint64_t value) {
    const Addr lo = std::max(seg_lo, addr);
    const Addr hi = std::min<Addr>(seg_hi, addr + size);
    for (Addr a = lo; a < hi; ++a) dst.write(a, payload_byte(value, a - addr));
  }

  ByteMap arch_;
};

std::uint64_t num_sets_of(const core::Dl1Config& dl1) {
  return dl1.geometry.capacity_bytes / dl1.geometry.line_bytes /
         dl1.geometry.associativity;
}

// ---------------------------------------------------------------------------
// The SRAM baseline / NVM drop-in organization: a plain set-associative DL1
// behind a store buffer, with prefetch fill registers.
class PlainOracle final : public OracleBase {
 public:
  PlainOracle(const core::Dl1Config& dl1, const mem::L2Config& l2)
      : lb_(dl1.geometry.line_bytes),
        tag_(dl1.timing.tag_cycles),
        read_(dl1.timing.read_cycles),
        write_(dl1.timing.write_cycles),
        array_(num_sets_of(dl1), dl1.geometry.associativity, lb_),
        banks_(dl1.timing.banks, lb_),
        fills_(8),  // the production system's fixed prefetch-register count
        store_buffer_(dl1.store_buffer_depth),
        writeback_buffer_(dl1.writeback_buffer_depth),
        l2_(l2) {}

  Cycle load(Addr addr, unsigned size, Cycle now) override {
    stats_.loads += 1;
    const Addr first = align_down(addr, lb_);
    const Addr last = align_down(addr + size - 1, lb_);
    Cycle ready = load_line(addr, now);
    for (Addr line = first + lb_; line <= last; line += lb_) {
      ready = std::max(ready, load_line(line, now + 1));
    }
    check_bytes(addr, size, dl1_bytes_, "dl1");
    return ready;
  }

  Cycle store(Addr addr, unsigned size, std::uint64_t value,
              Cycle now) override {
    stats_.stores += 1;
    arch_store(addr, size, value);
    const Addr first = align_down(addr, lb_);
    const Addr last = align_down(addr + size - 1, lb_);
    Cycle accepted = now;
    for (Addr line = first; line <= last; line += lb_) {
      const Cycle slot = store_buffer_.accept(accepted);
      const Cycle done = drain_store(line, slot);
      store_buffer_.commit(done);
      store_overlap(dl1_bytes_, line, line + lb_, addr, size, value);
      accepted = std::max(accepted, slot);
    }
    return std::max(accepted, now + 1);
  }

  void prefetch(Addr addr, Cycle now) override {
    stats_.prefetches += 1;
    const Addr line = align_down(addr, lb_);
    if (array_.present(line)) return;
    if (fills_.lookup(line)) return;
    const Cycle data = l2_.fetch_line(line, now + 1 + tag_, stats_);
    fill_l2_span(line, data);
    const Addr span = align_down(line, l2_.line_bytes());
    for (Addr l = span; l < span + l2_.line_bytes(); l += lb_) {
      fills_.insert(l, data, {});
    }
  }

 private:
  Cycle load_line(Addr addr, Cycle now) {
    const Addr line = align_down(addr, lb_);
    const Cycle tag_done = now + tag_;
    if (array_.touch(line, /*is_write=*/false)) {
      stats_.l1_read_hits += 1;
      Cycle pending = 0;
      if (auto taken = fills_.consume(line)) pending = taken->ready;
      const RefGrant g = banks_.acquire(line, now, read_);
      stats_.l1_array_reads += 1;
      stats_.bank_conflict_cycles += g.start - now;
      return std::max({g.done, tag_done, pending});
    }
    stats_.l1_misses += 1;
    const Cycle data = l2_.fetch_line(line, tag_done, stats_);
    fill_l2_span(line, data);
    return data;
  }

  void fill_l2_span(Addr line, Cycle data) {
    const std::uint64_t span = l2_.line_bytes();
    const Addr base = align_down(line, span);
    for (Addr l = base; l < base + span; l += lb_) {
      if (array_.present(l)) continue;
      const RefArray::Victim v = array_.fill(l, /*dirty=*/false);
      retire_victim(v, data);
      copy_span(dl1_bytes_, l2_.bytes(), l, lb_);
      stats_.l1_array_writes += 1;
    }
  }

  void retire_victim(const RefArray::Victim& v, Cycle now) {
    if (!v.valid || !v.dirty) return;
    const Cycle slot = writeback_buffer_.accept(now);
    stats_.l1_array_reads += 1;
    const Cycle done =
        l2_.accept_writeback(v.addr, lb_, dl1_bytes_, slot + read_, stats_);
    writeback_buffer_.commit(done);
    stats_.l1_writebacks += 1;
  }

  Cycle drain_store(Addr addr, Cycle start) {
    const Addr line = align_down(addr, lb_);
    const Cycle tag_done = start + tag_;
    if (array_.touch(line, /*is_write=*/true)) {
      stats_.l1_write_hits += 1;
      Cycle pending = 0;
      if (auto taken = fills_.consume(line)) pending = taken->ready;
      const Cycle earliest = std::max(tag_done, pending);
      const RefGrant g = banks_.acquire(line, earliest, write_);
      stats_.l1_array_writes += 1;
      stats_.bank_conflict_cycles += g.start - earliest;
      return g.done;
    }
    stats_.l1_misses += 1;
    const Cycle data = l2_.fetch_line(line, tag_done, stats_);
    fill_l2_span(line, data);
    array_.mark_dirty(line);
    return data + write_;
  }

  std::uint64_t lb_;
  Cycles tag_, read_, write_;
  RefArray array_;
  RefBanks banks_;
  RefFillRegs fills_;
  RefFifo store_buffer_;
  RefFifo writeback_buffer_;
  RefL2 l2_;
  ByteMap dl1_bytes_;
};

// ---------------------------------------------------------------------------
// The VWB organization: NVM array fronted by a sectored very-wide buffer.
class VwbOracle final : public OracleBase {
 public:
  VwbOracle(const core::Dl1Config& dl1, const core::VwbGeometry& vwb,
            unsigned mshr_entries, bool honor_prefetch,
            const mem::L2Config& l2, const OracleFaults& faults)
      : lb_(dl1.geometry.line_bytes),
        sector_(vwb.sector_bytes),
        vline_(vwb.line_bytes),
        tag_(dl1.timing.tag_cycles),
        read_(dl1.timing.read_cycles),
        write_(dl1.timing.write_cycles),
        honor_prefetch_(honor_prefetch),
        faults_(faults),
        array_(num_sets_of(dl1), dl1.geometry.associativity, lb_),
        vwb_(vwb.num_lines, vwb.line_bytes, vwb.sector_bytes),
        banks_(dl1.timing.banks, lb_),
        fills_(mshr_entries),
        store_buffer_(dl1.store_buffer_depth),
        writeback_buffer_(dl1.writeback_buffer_depth),
        l2_(l2) {}

  Cycle load(Addr addr, unsigned size, Cycle now) override {
    stats_.loads += 1;
    const Addr first = align_down(addr, sector_);
    const Addr last = align_down(addr + size - 1, sector_);
    Cycle ready = load_sector(addr, now);
    for (Addr s = first + sector_; s <= last; s += sector_) {
      ready = std::max(ready, load_sector(s, now + 1));
    }
    check_bytes(addr, size, front_bytes_, "vwb");
    return ready;
  }

  Cycle store(Addr addr, unsigned size, std::uint64_t value,
              Cycle now) override {
    stats_.stores += 1;
    arch_store(addr, size, value);
    const Addr first = align_down(addr, sector_);
    const Addr last = align_down(addr + size - 1, sector_);
    Cycle accepted = now + 1;
    for (Addr s = first; s <= last; s += sector_) {
      if (vwb_.probe(s).hit) {
        // Absorbed by the VWB; any fill-register copy becomes stale.
        if (!faults_.skip_fill_register_invalidate_on_store) {
          fills_.invalidate(s);
        }
        vwb_.mark_dirty(s);
        stats_.front_store_hits += 1;
        store_overlap(front_bytes_, s, s + sector_, addr, size, value);
        continue;
      }
      // Direct NVM-array update through the store buffer.
      Cycle pending = 0;
      if (faults_.skip_fill_register_invalidate_on_store) {
        if (auto r = fills_.lookup(s)) pending = *r;
      } else if (auto taken = fills_.consume(s)) {
        pending = taken->ready;
      }
      const Cycle slot = store_buffer_.accept(now);
      const Cycle tag_done = slot + tag_;
      Cycle done;
      if (array_.touch(s, /*is_write=*/true)) {
        stats_.l1_write_hits += 1;
        const Cycle earliest = std::max(tag_done, pending);
        const RefGrant g = banks_.acquire(s, earliest, write_);
        stats_.l1_array_writes += 1;
        stats_.bank_conflict_cycles += g.start - earliest;
        done = g.done;
      } else {
        // Write miss: write-allocate in the DL1, no-allocate in the VWB.
        const Cycle data = l2_.fetch_line(s, tag_done, stats_);
        stats_.l1_misses += 1;
        const RefArray::Victim v = array_.fill(s, /*dirty=*/true);
        retire_l1_victim(v, data);
        copy_span(dl1_bytes_, l2_.bytes(), s, lb_);
        const RefGrant g = banks_.acquire(s, data, write_);
        stats_.l1_array_writes += 1;
        done = g.done;
      }
      store_overlap(dl1_bytes_, s, s + sector_, addr, size, value);
      store_buffer_.commit(done);
      accepted = std::max(accepted, std::max(slot, now + 1));
    }
    return accepted;
  }

  void prefetch(Addr addr, Cycle now) override {
    stats_.prefetches += 1;
    if (!honor_prefetch_) return;
    const Addr line = align_down(addr, sector_);
    if (vwb_.probe(line).hit) return;
    if (fills_.lookup(line)) return;
    const Cycle start = now + 1;
    if (array_.touch(line, /*is_write=*/false)) {
      const RefGrant g = banks_.acquire(line, start, read_);
      stats_.l1_array_reads += 1;
      fills_.insert(line, g.done, snapshot(line));
    } else {
      const Cycle data = fill_from_l2(line, start + tag_);
      fills_.insert(line, data, snapshot(line));
    }
  }

 private:
  Bytes snapshot(Addr line) const {
    Bytes b(sector_);
    for (std::uint64_t i = 0; i < sector_; ++i) {
      b[i] = dl1_bytes_.read(line + i);
    }
    return b;
  }

  Cycle load_sector(Addr addr, Cycle now) {
    const Cycle lookup_done = now + 1;  // parallel VWB/DL1 tag probe
    const RefSectorBuffer::Hit hit = vwb_.lookup(addr);
    if (hit.hit) {
      stats_.front_hits += 1;
      return std::max(lookup_done, hit.ready);
    }
    stats_.front_misses += 1;
    const Cycle ready = promote(addr, now);
    return std::max(ready, lookup_done);
  }

  Cycle promote(Addr demand_addr, Cycle now) {
    const Addr demand_line = align_down(demand_addr, sector_);
    for (Addr d : vwb_.allocate_line(demand_addr)) {
      // Dirty VWB-victim sectors retire into the NVM array (inclusion
      // guarantees the line is resident in correct operation).
      copy_span(dl1_bytes_, front_bytes_, d, sector_);
      array_.touch(d, /*is_write=*/true);
      stats_.l1_array_writes += 1;
      stats_.front_writebacks += 1;
    }

    // Demand sector first (critical word first).
    Cycle demand_ready;
    if (auto taken = fills_.consume(demand_line)) {
      demand_ready = std::max(taken->ready, now);
      stats_.prefetch_hits += 1;
      for (std::uint64_t i = 0; i < sector_ && i < taken->data.size(); ++i) {
        front_bytes_.write(demand_line + i, taken->data[i]);
      }
    } else if (array_.touch(demand_line, /*is_write=*/false)) {
      stats_.l1_read_hits += 1;
      const RefGrant g = banks_.acquire(demand_line, now, read_);
      stats_.l1_array_reads += 1;
      stats_.bank_conflict_cycles += g.start - now;
      demand_ready = g.done;
      copy_span(front_bytes_, dl1_bytes_, demand_line, sector_);
    } else {
      demand_ready = fill_from_l2(demand_line, now + tag_);
      copy_span(front_bytes_, dl1_bytes_, demand_line, sector_);
    }
    vwb_.fill_sector(demand_line, demand_ready);

    // Sibling sectors ride along only when their bank is idle.
    const Addr vbase = align_down(demand_addr, vline_);
    for (Addr s = vbase; s < vbase + vline_; s += sector_) {
      if (s == demand_line) continue;
      if (vwb_.probe(s).hit) continue;
      if (fills_.lookup(s)) continue;
      if (!array_.present(s)) continue;
      if (banks_.free_at(s) > now) continue;
      array_.touch(s, /*is_write=*/false);
      const RefGrant g = banks_.acquire(s, now, read_);
      stats_.l1_array_reads += 1;
      vwb_.fill_sector(s, g.done);
      copy_span(front_bytes_, dl1_bytes_, s, sector_);
    }
    stats_.promotions += 1;
    return demand_ready;
  }

  Cycle fill_from_l2(Addr line, Cycle now) {
    stats_.l1_misses += 1;
    const Cycle data = l2_.fetch_line(line, now, stats_);
    const RefArray::Victim v = array_.fill(line, /*dirty=*/false);
    retire_l1_victim(v, data);
    copy_span(dl1_bytes_, l2_.bytes(), line, lb_);
    stats_.l1_array_writes += 1;
    return data;
  }

  void retire_l1_victim(const RefArray::Victim& v, Cycle now) {
    if (!v.valid) return;
    fills_.invalidate(v.addr);
    bool vwb_dirty = false;
    if (!faults_.drop_front_invalidate_on_l1_evict) {
      vwb_dirty = vwb_.invalidate_sector(v.addr);
      if (vwb_dirty) copy_span(dl1_bytes_, front_bytes_, v.addr, sector_);
    }
    if (!v.dirty && !vwb_dirty) return;
    const Cycle slot = writeback_buffer_.accept(now);
    stats_.l1_array_reads += 1;
    const Cycle done =
        l2_.accept_writeback(v.addr, lb_, dl1_bytes_, slot + read_, stats_);
    writeback_buffer_.commit(done);
    stats_.l1_writebacks += 1;
  }

  std::uint64_t lb_, sector_, vline_;
  Cycles tag_, read_, write_;
  bool honor_prefetch_;
  OracleFaults faults_;
  RefArray array_;
  RefSectorBuffer vwb_;
  RefBanks banks_;
  RefFillRegs fills_;
  RefFifo store_buffer_;
  RefFifo writeback_buffer_;
  RefL2 l2_;
  ByteMap dl1_bytes_;
  ByteMap front_bytes_;
};

// ---------------------------------------------------------------------------
// The narrow-front family: L0 cache / EMSHR / SRAM write buffer, expressed
// as one parametric organization (allocation-policy variants).
enum class RefPolicy { kOnLoadMiss, kOnL1Miss, kOnStore };

class NarrowOracle final : public OracleBase {
 public:
  NarrowOracle(const core::Dl1Config& dl1, unsigned front_entries,
               std::uint64_t entry_bytes, RefPolicy policy,
               unsigned mshr_entries, const mem::L2Config& l2,
               const OracleFaults& faults)
      : lb_(dl1.geometry.line_bytes),
        entry_(entry_bytes),
        tag_(dl1.timing.tag_cycles),
        read_(dl1.timing.read_cycles),
        write_(dl1.timing.write_cycles),
        policy_(policy),
        faults_(faults),
        array_(num_sets_of(dl1), dl1.geometry.associativity, lb_),
        front_(front_entries, entry_bytes, entry_bytes),
        banks_(dl1.timing.banks, lb_),
        mshr_(mshr_entries),
        store_buffer_(dl1.store_buffer_depth),
        writeback_buffer_(dl1.writeback_buffer_depth),
        l2_(l2) {}

  Cycle load(Addr addr, unsigned size, Cycle now) override {
    stats_.loads += 1;
    const Addr first = align_down(addr, entry_);
    const Addr last = align_down(addr + size - 1, entry_);
    Cycle ready = load_entry(addr, now);
    for (Addr s = first + entry_; s <= last; s += entry_) {
      ready = std::max(ready, load_entry(s, now + 1));
    }
    // Each byte is served by the front entry when resident, else the array.
    for (unsigned i = 0; i < size; ++i) {
      const Addr a = addr + i;
      const bool in_front = front_.probe(a).hit;
      const std::uint8_t expected = arch_.read(a);
      const std::uint8_t observed =
          in_front ? front_bytes_.read(a) : dl1_bytes_.read(a);
      if (expected != observed) {
        record(a, expected, observed, in_front ? "front" : "dl1");
      }
    }
    return ready;
  }

  Cycle store(Addr addr, unsigned size, std::uint64_t value,
              Cycle now) override {
    stats_.stores += 1;
    arch_store(addr, size, value);
    const Addr first = align_down(addr, entry_);
    const Addr last = align_down(addr + size - 1, entry_);
    Cycle accepted = now + 1;
    for (Addr s = first; s <= last; s += entry_) {
      if (front_.probe(s).hit) {
        front_.mark_dirty(s);
        stats_.front_store_hits += 1;
        store_overlap(front_bytes_, s, s + entry_, addr, size, value);
        continue;
      }
      const Addr line = align_down(s, lb_);
      if (policy_ == RefPolicy::kOnStore) {
        // Write-mitigation hybrid: allocate a front entry and absorb the
        // store there; the underlying line is pulled alongside.
        Cycle ready;
        const Cycle start = now + 1;
        const Cycle fly = mshr_.lookup(line, start);
        if (fly != 0) {
          ready = fly;
        } else if (array_.touch(line, /*is_write=*/false)) {
          const RefGrant g = banks_.acquire(s, start, read_);
          stats_.l1_array_reads += 1;
          ready = g.done;
        } else {
          const Cycle data = fill_from_l2(line, start + tag_);
          ready = mshr_.allocate(line, start, data);
        }
        allocate_front(s, ready);
        front_.mark_dirty(s);
        stats_.front_store_hits += 1;
        store_overlap(front_bytes_, s, s + entry_, addr, size, value);
        continue;
      }
      const Cycle slot = store_buffer_.accept(now);
      const Cycle tag_done = slot + tag_;
      Cycle done;
      const Cycle fly = mshr_.lookup(line, slot);
      if (fly != 0) {
        const RefGrant g =
            banks_.acquire(line, std::max(fly, tag_done), write_);
        array_.touch(line, /*is_write=*/true);
        stats_.l1_write_hits += 1;
        stats_.l1_array_writes += 1;
        done = g.done;
      } else if (array_.touch(line, /*is_write=*/true)) {
        stats_.l1_write_hits += 1;
        const RefGrant g = banks_.acquire(line, tag_done, write_);
        stats_.l1_array_writes += 1;
        stats_.bank_conflict_cycles += g.start - tag_done;
        done = g.done;
      } else {
        const Cycle data = l2_.fetch_line(line, tag_done, stats_);
        stats_.l1_misses += 1;
        const RefArray::Victim v = array_.fill(line, /*dirty=*/true);
        retire_l1_victim(v, data);
        copy_span(dl1_bytes_, l2_.bytes(), line, lb_);
        const RefGrant g = banks_.acquire(line, data, write_);
        stats_.l1_array_writes += 1;
        done = g.done;
      }
      store_overlap(dl1_bytes_, s, s + entry_, addr, size, value);
      store_buffer_.commit(done);
      accepted = std::max(accepted, std::max(slot, now + 1));
    }
    return accepted;
  }

  void prefetch(Addr addr, Cycle now) override {
    stats_.prefetches += 1;
    if (front_.probe(addr).hit) return;
    const Addr line = align_down(addr, lb_);
    const Cycle start = now + 1;
    Cycle ready;
    const Cycle fly = mshr_.lookup(line, start);
    if (fly != 0) {
      ready = fly;
    } else if (!array_.present(line) &&
               mshr_.occupancy(start) >= mshr_.capacity()) {
      return;  // hint dropped: would need an MSHR and none is free
    } else if (array_.touch(line, /*is_write=*/false)) {
      const RefGrant g = banks_.acquire(line, start, read_);
      stats_.l1_array_reads += 1;
      ready = g.done;
    } else {
      const Cycle data = fill_from_l2(line, start + tag_);
      ready = mshr_.allocate(line, start, data);
    }
    allocate_front(addr, ready);
  }

 private:
  Cycle load_entry(Addr addr, Cycle now) {
    const Cycle lookup_done = now + 1;  // parallel front/DL1 tag probe
    const RefSectorBuffer::Hit hit = front_.lookup(addr);
    if (hit.hit) {
      stats_.front_hits += 1;
      return std::max(lookup_done, hit.ready);
    }
    stats_.front_misses += 1;

    const Addr line = align_down(addr, lb_);
    Cycle ready;
    bool was_l1_miss = false;
    const Cycle fly = mshr_.lookup(line, now);
    if (fly != 0) {
      ready = std::max(fly, now);
      was_l1_miss = true;
    } else if (array_.touch(line, /*is_write=*/false)) {
      stats_.l1_read_hits += 1;
      const RefGrant g = banks_.acquire(line, now, read_);
      stats_.l1_array_reads += 1;
      stats_.bank_conflict_cycles += g.start - now;
      ready = g.done;
    } else {
      const Cycle data = fill_from_l2(line, now + tag_);
      ready = mshr_.allocate(line, now, data);
      was_l1_miss = true;
    }

    const bool allocate = policy_ == RefPolicy::kOnLoadMiss ||
                          (policy_ == RefPolicy::kOnL1Miss && was_l1_miss);
    if (allocate) allocate_front(addr, ready);
    return std::max(ready, lookup_done);
  }

  void allocate_front(Addr addr, Cycle ready) {
    for (Addr d : front_.allocate_line(addr)) {
      copy_span(dl1_bytes_, front_bytes_, d, entry_);
      array_.touch(d, /*is_write=*/true);
      stats_.l1_array_writes += 1;
      stats_.front_writebacks += 1;
    }
    front_.fill_sector(addr, ready);
    copy_span(front_bytes_, dl1_bytes_, align_down(addr, entry_), entry_);
    stats_.promotions += 1;
  }

  Cycle fill_from_l2(Addr line, Cycle now) {
    stats_.l1_misses += 1;
    const Cycle data = l2_.fetch_line(line, now, stats_);
    const RefArray::Victim v = array_.fill(line, /*dirty=*/false);
    retire_l1_victim(v, data);
    copy_span(dl1_bytes_, l2_.bytes(), line, lb_);
    stats_.l1_array_writes += 1;
    return data;
  }

  void retire_l1_victim(const RefArray::Victim& v, Cycle now) {
    if (!v.valid) return;
    // The victim's frame is gone: its in-flight fill entry must not keep
    // merging later stores into the evicted frame.
    mshr_.release(v.addr);
    bool front_dirty = false;
    if (!faults_.drop_front_invalidate_on_l1_evict) {
      for (Addr s = v.addr; s < v.addr + lb_; s += entry_) {
        if (front_.invalidate_sector(s)) {
          copy_span(dl1_bytes_, front_bytes_, s, entry_);
          front_dirty = true;
        }
      }
    }
    if (!v.dirty && !front_dirty) return;
    const Cycle slot = writeback_buffer_.accept(now);
    stats_.l1_array_reads += 1;
    const Cycle done =
        l2_.accept_writeback(v.addr, lb_, dl1_bytes_, slot + read_, stats_);
    writeback_buffer_.commit(done);
    stats_.l1_writebacks += 1;
  }

  std::uint64_t lb_, entry_;
  Cycles tag_, read_, write_;
  RefPolicy policy_;
  OracleFaults faults_;
  RefArray array_;
  RefSectorBuffer front_;
  RefBanks banks_;
  RefMshr mshr_;
  RefFifo store_buffer_;
  RefFifo writeback_buffer_;
  RefL2 l2_;
  ByteMap dl1_bytes_;
  ByteMap front_bytes_;
};

// ECC / retention-fault decorator. Mirrors reliability::FaultyDl1System:
// an independently instantiated FaultInjector driven by the same
// (addr, size, cycle) sequence reproduces the production fault schedule
// exactly, so the oracle predicts ECC-corrected completion cycles and the
// ecc_corrections / ecc_refills counters without sharing any state with
// the simulator. The skip_ecc_correction_latency oracle fault counts
// corrections but omits their latency — a pure "cycle" divergence.
class FaultedOracle final : public ReferenceDl1 {
 public:
  FaultedOracle(std::unique_ptr<ReferenceDl1> inner,
                const reliability::FaultConfig& fault_config,
                const reliability::EccConfig& ecc, std::uint64_t line_bytes,
                const OracleFaults& faults)
      : inner_(std::move(inner)),
        injector_(fault_config, ecc, line_bytes),
        skip_correction_latency_(faults.skip_ecc_correction_latency) {}

  sim::Cycle load(Addr addr, unsigned size, sim::Cycle now) override {
    sim::Cycle done = inner_->load(addr, size, now);
    const reliability::FaultInjector::LoadPenalty penalty =
        injector_.on_load(addr, size, now);
    done += penalty.refill_cycles;
    if (!skip_correction_latency_) done += penalty.correction_cycles;
    sync();
    return done;
  }

  sim::Cycle store(Addr addr, unsigned size, std::uint64_t value,
                   sim::Cycle now) override {
    const sim::Cycle done = inner_->store(addr, size, value, now);
    injector_.on_store(addr, size, now);
    sync();
    return done;
  }

  void prefetch(Addr addr, sim::Cycle now) override {
    inner_->prefetch(addr, now);
    sync();
  }

 private:
  void sync() {
    stats_ = inner_->stats();
    stats_.ecc_corrections = injector_.corrections();
    stats_.ecc_refills = injector_.refills();
    shadow_violations_ = inner_->shadow_violations();
  }

  std::unique_ptr<ReferenceDl1> inner_;
  reliability::FaultInjector injector_;
  bool skip_correction_latency_;
};

}  // namespace

std::unique_ptr<ReferenceDl1> make_reference_dl1(
    const cpu::SystemConfig& config, const OracleFaults& faults) {
  if (config.faults_active()) {
    config.faults.validate();
    config.ecc.validate();
    cpu::SystemConfig clean = config;
    clean.faults.enabled = false;
    return std::make_unique<FaultedOracle>(
        make_reference_dl1(clean, faults), config.faults, config.ecc,
        config.dl1_config().geometry.line_bytes, faults);
  }
  config.validate();
  const core::Dl1Config dl1 = config.dl1_config();
  switch (config.organization) {
    case cpu::Dl1Organization::kSramBaseline:
    case cpu::Dl1Organization::kNvmDropIn:
      return std::make_unique<PlainOracle>(dl1, config.l2);
    case cpu::Dl1Organization::kNvmVwb: {
      const core::VwbGeometry g = config.vwb_geometry();
      if (g.sector_bytes != dl1.geometry.line_bytes) {
        // Degenerate geometry: the system falls back to the narrow-front
        // organization with on-load-miss allocation.
        return std::make_unique<NarrowOracle>(
            dl1, g.num_lines, g.line_bytes, RefPolicy::kOnLoadMiss,
            config.mshr_entries, config.l2, faults);
      }
      return std::make_unique<VwbOracle>(dl1, g, config.mshr_entries,
                                         /*honor_prefetch=*/true, config.l2,
                                         faults);
    }
    case cpu::Dl1Organization::kNvmL0:
      return std::make_unique<NarrowOracle>(dl1, 8, 32, RefPolicy::kOnLoadMiss,
                                            4, config.l2, faults);
    case cpu::Dl1Organization::kNvmEmshr:
      return std::make_unique<NarrowOracle>(dl1, 4, 64, RefPolicy::kOnL1Miss,
                                            4, config.l2, faults);
    case cpu::Dl1Organization::kNvmWriteBuf:
      return std::make_unique<NarrowOracle>(dl1, 4, 64, RefPolicy::kOnStore, 4,
                                            config.l2, faults);
  }
  throw ConfigError("unknown DL1 organization");
}

}  // namespace sttsim::check
