#include "sttsim/check/golden.hpp"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sttsim/util/text.hpp"

namespace sttsim::check {
namespace {

constexpr double kValueTolerance = 1e-6;

std::string format_value(double v) { return strprintf("%.9g", v); }

/// Splits "key: value" (value may contain further colons/spaces).
bool split_kv(const std::string& line, std::string& key, std::string& value) {
  const std::size_t colon = line.find(": ");
  if (colon == std::string::npos) {
    // A bare "key:" with an empty value is also legal.
    if (!line.empty() && line.back() == ':') {
      key = line.substr(0, line.size() - 1);
      value.clear();
      return true;
    }
    return false;
  }
  key = line.substr(0, colon);
  value = line.substr(colon + 2);
  return true;
}

}  // namespace

std::string serialize_figure(const report::FigureData& fig) {
  std::ostringstream out;
  out << "# sttsim golden figure\n";
  out << "title: " << fig.title << "\n";
  out << "row_header: " << fig.row_header << "\n";
  out << "value_unit: " << fig.value_unit << "\n";
  out << "rows: " << fig.row_labels.size() << "\n";
  for (std::size_t i = 0; i < fig.row_labels.size(); ++i) {
    out << "row " << i << ": " << fig.row_labels[i] << "\n";
  }
  out << "series: " << fig.series.size() << "\n";
  for (std::size_t s = 0; s < fig.series.size(); ++s) {
    out << "series " << s << ": " << fig.series[s].name << "\n";
    for (std::size_t i = 0; i < fig.series[s].values.size(); ++i) {
      out << "value " << s << " " << i << ": "
          << format_value(fig.series[s].values[i]) << "\n";
    }
  }
  return out.str();
}

report::FigureData parse_figure(const std::string& text) {
  report::FigureData fig;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::string key, value;
    if (!split_kv(line, key, value)) {
      throw std::runtime_error("golden: malformed line: " + line);
    }
    std::istringstream keys(key);
    std::string word;
    keys >> word;
    if (word == "title") {
      fig.title = value;
    } else if (word == "row_header") {
      fig.row_header = value;
    } else if (word == "value_unit") {
      fig.value_unit = value;
    } else if (word == "rows") {
      fig.row_labels.reserve(std::stoul(value));
    } else if (word == "row") {
      fig.row_labels.push_back(value);
    } else if (word == "series") {
      std::size_t index;
      if (keys >> index) {
        if (index != fig.series.size()) {
          throw std::runtime_error("golden: out-of-order series: " + line);
        }
        fig.series.push_back(report::Series{value, {}});
      }  // else it is the "series: <count>" header; nothing to do
    } else if (word == "value") {
      std::size_t s, i;
      if (!(keys >> s >> i) || s >= fig.series.size() ||
          i != fig.series[s].values.size()) {
        throw std::runtime_error("golden: malformed value line: " + line);
      }
      fig.series[s].values.push_back(std::stod(value));
    } else {
      throw std::runtime_error("golden: unknown key: " + key);
    }
  }
  return fig;
}

std::string GoldenComparison::to_string() const {
  if (missing) return "golden file missing (set STTSIM_UPDATE_GOLDEN=1)";
  std::string out;
  for (const FieldDiff& d : diffs) {
    out += strprintf("[%s] %s: golden=%s observed=%s\n", d.figure.c_str(),
                     d.location.c_str(), d.expected.c_str(),
                     d.observed.c_str());
  }
  return out;
}

GoldenComparison compare_figures(const report::FigureData& golden,
                                 const report::FigureData& fig) {
  GoldenComparison cmp;
  const std::string& title =
      golden.title.empty() ? fig.title : golden.title;
  const auto diff = [&](const std::string& location,
                        const std::string& expected,
                        const std::string& observed) {
    cmp.diffs.push_back(FieldDiff{title, location, expected, observed});
  };

  if (golden.title != fig.title) diff("title", golden.title, fig.title);
  if (golden.row_header != fig.row_header) {
    diff("row_header", golden.row_header, fig.row_header);
  }
  if (golden.value_unit != fig.value_unit) {
    diff("value_unit", golden.value_unit, fig.value_unit);
  }
  if (golden.row_labels != fig.row_labels) {
    diff("row_labels",
         strprintf("%zu labels", golden.row_labels.size()),
         strprintf("%zu labels", fig.row_labels.size()));
    // Name the first differing label for a precise message.
    const std::size_t n =
        std::min(golden.row_labels.size(), fig.row_labels.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (golden.row_labels[i] != fig.row_labels[i]) {
        diff(strprintf("row %zu", i), golden.row_labels[i],
             fig.row_labels[i]);
        break;
      }
    }
  }
  if (golden.series.size() != fig.series.size()) {
    diff("series count", strprintf("%zu", golden.series.size()),
         strprintf("%zu", fig.series.size()));
    return cmp;
  }
  for (std::size_t s = 0; s < golden.series.size(); ++s) {
    const report::Series& g = golden.series[s];
    const report::Series& f = fig.series[s];
    if (g.name != f.name) {
      diff(strprintf("series %zu name", s), g.name, f.name);
    }
    if (g.values.size() != f.values.size()) {
      diff(strprintf("series '%s' value count", g.name.c_str()),
           strprintf("%zu", g.values.size()),
           strprintf("%zu", f.values.size()));
      continue;
    }
    for (std::size_t i = 0; i < g.values.size(); ++i) {
      if (std::abs(g.values[i] - f.values[i]) > kValueTolerance) {
        const std::string row = i < golden.row_labels.size()
                                    ? golden.row_labels[i]
                                    : strprintf("%zu", i);
        diff(strprintf("series '%s' row '%s'", g.name.c_str(), row.c_str()),
             format_value(g.values[i]), format_value(f.values[i]));
      }
    }
  }
  return cmp;
}

GoldenComparison compare_against_golden(const std::string& path,
                                        const report::FigureData& fig) {
  std::ifstream in(path);
  if (!in) {
    GoldenComparison cmp;
    cmp.missing = true;
    return cmp;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return compare_figures(parse_figure(text.str()), fig);
}

void update_golden(const std::string& path, const report::FigureData& fig) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(path);
  if (!out) throw std::runtime_error("golden: cannot write " + path);
  out << serialize_figure(fig);
}

}  // namespace sttsim::check
