#include "sttsim/check/differential.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <utility>

#include "sttsim/cpu/batch_replay.hpp"
#include "sttsim/cpu/in_order_core.hpp"
#include "sttsim/cpu/trace_io.hpp"
#include "sttsim/util/text.hpp"

namespace sttsim::check {
namespace {

struct StatField {
  const char* name;
  std::uint64_t sim::MemStats::* member;
};

constexpr StatField kMemStatFields[] = {
    {"loads", &sim::MemStats::loads},
    {"stores", &sim::MemStats::stores},
    {"prefetches", &sim::MemStats::prefetches},
    {"front_hits", &sim::MemStats::front_hits},
    {"front_misses", &sim::MemStats::front_misses},
    {"front_store_hits", &sim::MemStats::front_store_hits},
    {"promotions", &sim::MemStats::promotions},
    {"front_writebacks", &sim::MemStats::front_writebacks},
    {"prefetch_hits", &sim::MemStats::prefetch_hits},
    {"l1_read_hits", &sim::MemStats::l1_read_hits},
    {"l1_write_hits", &sim::MemStats::l1_write_hits},
    {"l1_misses", &sim::MemStats::l1_misses},
    {"l1_writebacks", &sim::MemStats::l1_writebacks},
    {"l2_hits", &sim::MemStats::l2_hits},
    {"l2_misses", &sim::MemStats::l2_misses},
    {"l1_array_reads", &sim::MemStats::l1_array_reads},
    {"l1_array_writes", &sim::MemStats::l1_array_writes},
    {"l2_array_reads", &sim::MemStats::l2_array_reads},
    {"l2_array_writes", &sim::MemStats::l2_array_writes},
    {"bank_conflict_cycles", &sim::MemStats::bank_conflict_cycles},
    {"ecc_corrections", &sim::MemStats::ecc_corrections},
    {"ecc_refills", &sim::MemStats::ecc_refills},
    // The wear counters (l1_frame_writes_*) are deliberately absent: they
    // are end-of-run array snapshots, not part of the per-op contract.
};

const char* kind_name(cpu::OpKind kind) {
  switch (kind) {
    case cpu::OpKind::kExec:
      return "exec";
    case cpu::OpKind::kLoad:
      return "load";
    case cpu::OpKind::kStore:
      return "store";
    case cpu::OpKind::kPrefetch:
      return "prefetch";
  }
  return "?";
}

}  // namespace

Divergence run_differential(const cpu::SystemConfig& config,
                            const cpu::Trace& trace,
                            const OracleFaults& faults) {
  cpu::System system(config);
  std::unique_ptr<ReferenceDl1> oracle = make_reference_dl1(config, faults);

  Divergence div;
  std::size_t shadow_seen = 0;
  cpu::InOrderCore core;
  core.run_observed(trace, system.dl1(), [&](const cpu::OpEvent& ev) {
    if (div.diverged) return;  // oracle stops at the first divergence
    const cpu::TraceOp& op = *ev.op;

    sim::Cycle predicted = 0;
    switch (op.kind) {
      case cpu::OpKind::kExec:
        predicted = ev.issue + op.count;
        break;
      case cpu::OpKind::kLoad:
        predicted = std::max<sim::Cycle>(
            ev.issue + 1, oracle->load(op.addr, op.size, ev.issue));
        break;
      case cpu::OpKind::kStore:
        predicted = std::max<sim::Cycle>(
            ev.issue + 1,
            oracle->store(op.addr, op.size, op.value, ev.issue));
        break;
      case cpu::OpKind::kPrefetch:
        oracle->prefetch(op.addr, ev.issue);
        predicted = ev.issue + 1;
        break;
    }

    const auto flag = [&](const std::string& field, std::uint64_t expected,
                          std::uint64_t observed) {
      div.diverged = true;
      div.op_index = ev.index;
      div.field = field;
      div.expected = expected;
      div.observed = observed;
      div.detail = strprintf(
          "op #%zu (%s addr=0x%llx size=%u): %s oracle=%llu simulator=%llu",
          ev.index, kind_name(op.kind),
          static_cast<unsigned long long>(op.addr),
          static_cast<unsigned>(op.size), field.c_str(),
          static_cast<unsigned long long>(expected),
          static_cast<unsigned long long>(observed));
    };

    if (predicted != ev.complete) {
      flag("cycle", predicted, ev.complete);
      return;
    }
    const sim::MemStats& got = system.dl1().stats();
    const sim::MemStats& want = oracle->stats();
    for (const StatField& f : kMemStatFields) {
      if (got.*(f.member) != want.*(f.member)) {
        flag(f.name, want.*(f.member), got.*(f.member));
        return;
      }
    }
    const auto& violations = oracle->shadow_violations();
    if (violations.size() > shadow_seen) {
      const ShadowViolation& v = violations[shadow_seen];
      flag("shadow", v.expected, v.observed);
      div.detail = strprintf(
          "op #%zu (%s addr=0x%llx size=%u): shadow at 0x%llx level=%s "
          "expected=0x%02x observed=0x%02x",
          ev.index, kind_name(op.kind),
          static_cast<unsigned long long>(op.addr),
          static_cast<unsigned>(op.size),
          static_cast<unsigned long long>(v.addr), v.level.c_str(),
          static_cast<unsigned>(v.expected), static_cast<unsigned>(v.observed));
    }
  });
  return div;
}

Divergence run_batch_differential(const std::vector<cpu::SystemConfig>& configs,
                                  const cpu::Trace& trace,
                                  const OracleFaults& faults) {
  Divergence div;
  if (configs.empty()) return div;
  for (const cpu::SystemConfig& c : configs) c.validate();

  // The production side: the full batched stack — decode, delta/RLE
  // compression, class-homogeneous lane partitioning, one replay pass per
  // partition — exactly as the grid layer schedules it.
  const cpu::DecodedTrace decoded = cpu::decode(trace);
  const cpu::CompressedTrace compressed = cpu::compress(decoded);
  std::vector<sim::RunStats> batched(configs.size());
  for (const std::vector<std::size_t>& part :
       cpu::partition_batches(configs, cpu::kMaxBatchLanes)) {
    std::vector<cpu::System> systems;
    systems.reserve(part.size());
    for (const std::size_t i : part) {
      systems.emplace_back(configs[i], cpu::System::kPrevalidated);
    }
    std::vector<cpu::System*> lanes;
    lanes.reserve(systems.size());
    for (cpu::System& s : systems) lanes.push_back(&s);
    const std::vector<sim::RunStats> stats =
        cpu::System::run_batch(compressed, lanes);
    for (std::size_t i = 0; i < part.size(); ++i) batched[part[i]] = stats[i];
  }

  // The oracle side: replay the raw trace over a fresh reference DL1 per
  // configuration with the replay loop's timing semantics, then compare
  // final states lane by lane.
  for (std::size_t lane = 0; lane < configs.size(); ++lane) {
    std::unique_ptr<ReferenceDl1> oracle =
        make_reference_dl1(configs[lane], faults);
    sim::RunStats want;
    sim::Cycle now = 0;
    for (const cpu::TraceOp& op : trace) {
      switch (op.kind) {
        case cpu::OpKind::kExec:
          want.core.instructions += op.count;
          want.core.exec_cycles += op.count;
          now += op.count;
          break;
        case cpu::OpKind::kLoad: {
          want.core.instructions += 1;
          want.core.mem_instructions += 1;
          want.core.exec_cycles += 1;
          const sim::Cycle issue_done = now + 1;
          const sim::Cycle done = std::max<sim::Cycle>(
              issue_done, oracle->load(op.addr, op.size, now));
          want.core.read_stall_cycles += done - issue_done;
          now = done;
          break;
        }
        case cpu::OpKind::kStore: {
          want.core.instructions += 1;
          want.core.mem_instructions += 1;
          want.core.exec_cycles += 1;
          const sim::Cycle issue_done = now + 1;
          const sim::Cycle done = std::max<sim::Cycle>(
              issue_done, oracle->store(op.addr, op.size, op.value, now));
          want.core.write_stall_cycles += done - issue_done;
          now = done;
          break;
        }
        case cpu::OpKind::kPrefetch:
          want.core.instructions += 1;
          want.core.exec_cycles += 1;
          oracle->prefetch(op.addr, now);
          now += 1;
          break;
      }
    }
    want.core.total_cycles = now;
    want.mem = oracle->stats();

    const auto flag = [&](const char* field, std::uint64_t expected,
                          std::uint64_t observed) {
      div.diverged = true;
      div.lane = lane;
      div.field = field;
      div.expected = expected;
      div.observed = observed;
      div.detail = strprintf(
          "batch lane %zu (%s): %s oracle=%llu batched=%llu", lane,
          cpu::to_string(configs[lane].organization), field,
          static_cast<unsigned long long>(expected),
          static_cast<unsigned long long>(observed));
    };

    const sim::RunStats& got = batched[lane];
    if (want.core.total_cycles != got.core.total_cycles) {
      flag("total_cycles", want.core.total_cycles, got.core.total_cycles);
      return div;
    }
    if (want.core.instructions != got.core.instructions) {
      flag("instructions", want.core.instructions, got.core.instructions);
      return div;
    }
    if (want.core.mem_instructions != got.core.mem_instructions) {
      flag("mem_instructions", want.core.mem_instructions,
           got.core.mem_instructions);
      return div;
    }
    if (want.core.exec_cycles != got.core.exec_cycles) {
      flag("exec_cycles", want.core.exec_cycles, got.core.exec_cycles);
      return div;
    }
    if (want.core.read_stall_cycles != got.core.read_stall_cycles) {
      flag("read_stall_cycles", want.core.read_stall_cycles,
           got.core.read_stall_cycles);
      return div;
    }
    if (want.core.write_stall_cycles != got.core.write_stall_cycles) {
      flag("write_stall_cycles", want.core.write_stall_cycles,
           got.core.write_stall_cycles);
      return div;
    }
    for (const StatField& f : kMemStatFields) {
      if (want.mem.*(f.member) != got.mem.*(f.member)) {
        flag(f.name, want.mem.*(f.member), got.mem.*(f.member));
        return div;
      }
    }
    if (!oracle->shadow_violations().empty()) {
      const ShadowViolation& v = oracle->shadow_violations().front();
      flag("shadow", v.expected, v.observed);
      div.detail = strprintf(
          "batch lane %zu (%s): shadow at 0x%llx level=%s expected=0x%02x "
          "observed=0x%02x",
          lane, cpu::to_string(configs[lane].organization),
          static_cast<unsigned long long>(v.addr), v.level.c_str(),
          static_cast<unsigned>(v.expected), static_cast<unsigned>(v.observed));
      return div;
    }
  }
  return div;
}

MinimizeResult minimize_trace(const cpu::SystemConfig& config,
                              const cpu::Trace& trace,
                              const OracleFaults& faults) {
  MinimizeResult result;
  result.trace = trace;
  result.divergence = run_differential(config, result.trace, faults);
  result.probes = 1;
  if (!result.divergence.diverged) return result;

  // Classic ddmin over op subsequences: try dropping ever-finer chunks,
  // keeping any candidate that still diverges.
  std::size_t n = 2;
  while (result.trace.size() >= 2) {
    const std::size_t chunk = (result.trace.size() + n - 1) / n;
    bool reduced = false;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t lo = std::min(result.trace.size(), i * chunk);
      const std::size_t hi = std::min(result.trace.size(), lo + chunk);
      if (lo >= hi) break;
      cpu::Trace candidate;
      candidate.reserve(result.trace.size() - (hi - lo));
      candidate.insert(candidate.end(), result.trace.begin(),
                       result.trace.begin() + lo);
      candidate.insert(candidate.end(), result.trace.begin() + hi,
                       result.trace.end());
      if (candidate.empty()) continue;
      const Divergence d = run_differential(config, candidate, faults);
      result.probes += 1;
      if (d.diverged) {
        result.trace = std::move(candidate);
        result.divergence = d;
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= result.trace.size()) break;  // 1-minimal
      n = std::min(result.trace.size(), n * 2);
    }
  }
  return result;
}

std::string write_reproducer(const std::string& dir, const std::string& tag,
                             const cpu::SystemConfig& config,
                             const MinimizeResult& result) {
  std::filesystem::create_directories(dir);
  const std::string trace_path = dir + "/" + tag + ".trace";
  cpu::write_trace_file(trace_path, result.trace);

  std::ofstream txt(dir + "/" + tag + ".txt");
  txt << "sttsim differential reproducer\n"
      << "organization: " << cpu::to_string(config.organization) << "\n"
      << "vwb_total_kbit: " << config.vwb_total_kbit << "\n"
      << "nvm_banks: " << config.nvm_banks << "\n"
      << "mshr_entries: " << config.mshr_entries << "\n";
  if (config.faults_active()) {
    txt << "faults: seed=" << config.faults.seed
        << " ppm=" << config.faults.fail_ppm
        << " double_pct=" << config.faults.double_fault_pct << "\n"
        << "ecc: correction_cycles=" << config.ecc.correction_cycles
        << " refill_cycles=" << config.ecc.refill_cycles << "\n";
  }
  txt << "trace_ops: " << result.trace.size() << "\n"
      << "minimizer_probes: " << result.probes << "\n"
      << "divergence: " << result.divergence.detail << "\n"
      << "replay: sttsim_cli --check-oracle --trace-in=" << tag << ".trace"
      << " --org=" << cpu::to_string(config.organization);
  if (config.faults_active()) {
    txt << " --faults=" << config.faults.seed << ":" << config.faults.fail_ppm
        << ":" << config.faults.double_fault_pct
        << " --ecc=" << config.ecc.correction_cycles << ":"
        << config.ecc.refill_cycles;
  }
  txt << "\n";
  return trace_path;
}

}  // namespace sttsim::check
