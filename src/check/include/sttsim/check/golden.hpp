// Golden-regression harness: canonical text serialization of figure data and
// a field-by-field comparator, so every paper artifact the repo reproduces is
// pinned to a checked-in reference. A drifting counter anywhere in the model
// shows up as a named (figure, series, row) difference, not a silent shift.
#pragma once

#include <string>
#include <vector>

#include "sttsim/report/figure.hpp"

namespace sttsim::check {

/// Canonical, diff-friendly text form of a figure (stable field order,
/// 9-significant-digit values). This is what golden files contain.
std::string serialize_figure(const report::FigureData& fig);

/// Inverse of serialize_figure. Throws std::runtime_error on malformed text.
report::FigureData parse_figure(const std::string& text);

/// One field-level difference between a figure and its golden reference.
struct FieldDiff {
  std::string figure;    ///< figure title (from the golden side if present)
  std::string location;  ///< e.g. "series 'Drop-In' row 'gemm'"
  std::string expected;  ///< golden value
  std::string observed;  ///< freshly computed value
};

struct GoldenComparison {
  bool missing = false;  ///< golden file absent (run with update to create)
  std::vector<FieldDiff> diffs;
  bool matches() const { return !missing && diffs.empty(); }
  /// Multi-line summary of every difference (empty when matching).
  std::string to_string() const;
};

/// Field-by-field comparison of `fig` against the reference in `text`
/// (numeric values compared with a 1e-6 absolute tolerance).
GoldenComparison compare_figures(const report::FigureData& golden,
                                 const report::FigureData& fig);

/// Compares `fig` against the golden file at `path`; `missing` is set when
/// the file does not exist.
GoldenComparison compare_against_golden(const std::string& path,
                                        const report::FigureData& fig);

/// Writes/overwrites the golden file at `path` (creating directories).
void update_golden(const std::string& path, const report::FigureData& fig);

}  // namespace sttsim::check
