// Differential fuzz driver: runs a production cpu::System and the reference
// oracle (check/oracle.hpp) in lockstep over one trace, comparing after every
// op. On divergence, a delta-debugging minimizer (ddmin) shrinks the trace to
// a 1-minimal reproducer that can be written out as a replayable artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sttsim/check/oracle.hpp"
#include "sttsim/cpu/system.hpp"
#include "sttsim/cpu/trace.hpp"

namespace sttsim::check {

/// The first point at which the simulator and the oracle disagreed.
struct Divergence {
  bool diverged = false;
  std::size_t op_index = 0;  ///< index of the offending op in the trace
  std::size_t lane = 0;      ///< batch lane (run_batch_differential only)
  std::string field;  ///< "cycle", a sim::MemStats field name, or "shadow"
  std::uint64_t expected = 0;  ///< oracle-side value
  std::uint64_t observed = 0;  ///< simulator-side value
  std::string detail;          ///< one-line human-readable description
};

/// Runs `trace` through a freshly built cpu::System for `config` and through
/// the reference oracle in lockstep. After every op the returned completion
/// cycle, every sim::MemStats counter, and the data-content shadow log are
/// compared; the first mismatch is returned. `faults` injects deliberate
/// oracle bugs (checker-sensitivity tests).
Divergence run_differential(const cpu::SystemConfig& config,
                            const cpu::Trace& trace,
                            const OracleFaults& faults = {});

/// Batched-path oracle check: runs `trace` through the config-parallel
/// batched replay engine (cpu::System::run_batch over the compressed trace,
/// lanes grouped by concrete class exactly like the grid layer), then
/// replays the trace over a fresh reference oracle per configuration with
/// the replay loop's timing semantics. Every lane's final core counters,
/// all sim::MemStats fields, and the oracle's data-content shadow are
/// compared; the first mismatch is returned with its lane index.
/// Unlike run_differential this compares end states, not per-op states —
/// it is the oracle closure over the batching + trace-compression layers.
Divergence run_batch_differential(const std::vector<cpu::SystemConfig>& configs,
                                  const cpu::Trace& trace,
                                  const OracleFaults& faults = {});

/// Result of delta-debugging minimization.
struct MinimizeResult {
  cpu::Trace trace;       ///< 1-minimal subsequence that still diverges
  Divergence divergence;  ///< the divergence the minimal trace triggers
  unsigned probes = 0;    ///< differential runs spent minimizing
};

/// ddmin: reduces `trace` to a 1-minimal subsequence that still diverges
/// under `config`/`faults`. If the full trace does not diverge, returns it
/// unchanged with `divergence.diverged == false`.
MinimizeResult minimize_trace(const cpu::SystemConfig& config,
                              const cpu::Trace& trace,
                              const OracleFaults& faults = {});

/// Writes a replayable reproducer: `<dir>/<tag>.trace` (binary trace,
/// cpu::trace_io format) plus `<dir>/<tag>.txt` describing the
/// configuration, the divergence, and the replay command. Creates `dir` if
/// needed; returns the trace path.
std::string write_reproducer(const std::string& dir, const std::string& tag,
                             const cpu::SystemConfig& config,
                             const MinimizeResult& result);

}  // namespace sttsim::check
