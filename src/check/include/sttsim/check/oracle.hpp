// Reference oracle: an independently written, deliberately simple functional
// model of every DL1 organization in the study.
//
// The production simulator (src/core, src/alt, src/mem) is optimized for
// throughput: intrusive LRU stamps, flat way arrays, busy-until timelines
// threaded through hot paths. A silent state-machine bug there would skew
// every reproduced figure while keeping the accounting identities of
// tests/test_fuzz.cpp intact. This oracle re-derives the same semantics from
// DESIGN.md using plain maps and obvious code, and additionally carries the
// *data contents* of every level (flat memory, L2, DL1 array, VWB / front
// sectors, MSHR fill registers) so that a load can be checked against the
// architecturally last-stored value — the class of coherence bug that op
// counters cannot see.
//
// The differential driver (check/differential.hpp) runs a cpu::System and a
// ReferenceDl1 in lockstep over the same trace and requires, after every
// single op, bit-equality of the returned completion cycle and of all
// sim::MemStats counters, plus an empty shadow-violation log.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sttsim/cpu/system.hpp"
#include "sttsim/sim/cycle.hpp"
#include "sttsim/sim/stats.hpp"
#include "sttsim/util/bits.hpp"

namespace sttsim::check {

/// Deliberately injectable oracle bugs. The differential test suite proves
/// the checker's sensitivity by flipping one of these and demanding that the
/// campaign (a) diverges and (b) minimizes to a tiny reproducer. A fault
/// makes the *oracle* wrong, which is indistinguishable, from the driver's
/// point of view, from the simulator being wrong.
struct OracleFaults {
  /// Skip invalidating the VWB / front sector when the DL1 evicts the
  /// underlying line — the classic stale-buffer inclusion bug.
  bool drop_front_invalidate_on_l1_evict = false;
  /// Skip dropping the MSHR fill-register copy when a store bypasses it —
  /// a later promotion serves pre-store (stale) data.
  bool skip_fill_register_invalidate_on_store = false;
  /// Count ECC single-bit corrections but omit their latency from the
  /// predicted load completion — the broken-ECC scenario the reliability
  /// campaign must catch as a pure timing divergence.
  bool skip_ecc_correction_latency = false;
};

/// One data-content shadow violation: a load observed a byte that differs
/// from the architecturally last-stored value.
struct ShadowViolation {
  Addr addr = 0;
  std::uint8_t expected = 0;  ///< architecturally correct byte
  std::uint8_t observed = 0;  ///< byte the modeled hierarchy served
  std::string level;          ///< serving level ("vwb", "dl1", "front", ...)
};

/// The oracle's view of one L1 data-memory organization: same call surface
/// as core::Dl1System (plus the store payload), same predicted cycles and
/// counters, independent implementation.
class ReferenceDl1 {
 public:
  virtual ~ReferenceDl1() = default;

  virtual sim::Cycle load(Addr addr, unsigned size, sim::Cycle now) = 0;
  virtual sim::Cycle store(Addr addr, unsigned size, std::uint64_t value,
                           sim::Cycle now) = 0;
  virtual void prefetch(Addr addr, sim::Cycle now) = 0;

  const sim::MemStats& stats() const { return stats_; }

  /// Data-content shadow violations observed so far (capped; the first
  /// violation is the interesting one).
  const std::vector<ShadowViolation>& shadow_violations() const {
    return shadow_violations_;
  }

 protected:
  ReferenceDl1() = default;

  sim::MemStats stats_;
  std::vector<ShadowViolation> shadow_violations_;
};

/// Builds the reference model matching what cpu::System would build for
/// `config` (including the degenerate-VWB fallback to the narrow-front
/// organization). Throws ConfigError on invalid configurations, like the
/// real system.
std::unique_ptr<ReferenceDl1> make_reference_dl1(
    const cpu::SystemConfig& config, const OracleFaults& faults = {});

}  // namespace sttsim::check
